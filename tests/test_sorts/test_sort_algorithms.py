"""Correctness and configuration tests for the five sorting algorithms."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sorts import (
    SORT_REGISTRY,
    ExternalMergeSort,
    HybridSort,
    LazySort,
    SegmentSort,
    SelectionSort,
)
from repro.storage.bufferpool import MemoryBudget
from repro.storage.collection import CollectionStatus, PersistentCollection

from tests.conftest import build_collection

ALL_SORTS = [
    (ExternalMergeSort, {}),
    (SelectionSort, {}),
    (SegmentSort, {"write_intensity": 0.3}),
    (SegmentSort, {"write_intensity": 0.0}),
    (SegmentSort, {"write_intensity": 1.0}),
    (SegmentSort, {}),  # optimal intensity
    (HybridSort, {"write_intensity": 0.2}),
    (HybridSort, {"write_intensity": 0.8}),
    (LazySort, {}),
]


def sort_ids(param):
    cls, kwargs = param
    suffix = ",".join(f"{k}={v}" for k, v in kwargs.items())
    return f"{cls.__name__}({suffix})"


@pytest.fixture(params=ALL_SORTS, ids=[sort_ids(p) for p in ALL_SORTS])
def sort_case(request):
    return request.param


class TestCorrectness:
    def test_sorts_wisconsin_input(self, sort_case, backend, small_sort_input, sort_budget):
        cls, kwargs = sort_case
        result = cls(backend, sort_budget, **kwargs).sort(small_sort_input)
        assert [r[0] for r in result.output.records] == sorted(small_sort_input.keys())

    def test_output_preserves_full_records(self, sort_case, backend, small_sort_input, sort_budget):
        cls, kwargs = sort_case
        result = cls(backend, sort_budget, **kwargs).sort(small_sort_input)
        assert sorted(result.output.records) == sorted(small_sort_input.records)

    def test_handles_duplicate_keys(self, sort_case, backend):
        cls, kwargs = sort_case
        keys = [5, 1, 5, 3, 1, 5, 2, 2, 4, 5, 0, 3] * 10
        collection = build_collection(backend, keys, name=f"dups-{cls.__name__}")
        budget = MemoryBudget.from_records(8)
        result = cls(backend, budget, **kwargs).sort(collection)
        assert [r[0] for r in result.output.records] == sorted(keys)

    def test_handles_already_sorted_input(self, sort_case, backend):
        cls, kwargs = sort_case
        collection = build_collection(backend, range(100), name=f"asc-{cls.__name__}")
        budget = MemoryBudget.from_records(10)
        result = cls(backend, budget, **kwargs).sort(collection)
        assert [r[0] for r in result.output.records] == list(range(100))

    def test_handles_reverse_sorted_input(self, sort_case, backend):
        cls, kwargs = sort_case
        collection = build_collection(
            backend, range(99, -1, -1), name=f"desc-{cls.__name__}"
        )
        budget = MemoryBudget.from_records(10)
        result = cls(backend, budget, **kwargs).sort(collection)
        assert [r[0] for r in result.output.records] == list(range(100))

    def test_handles_empty_input(self, sort_case, backend):
        cls, kwargs = sort_case
        collection = build_collection(backend, [], name=f"empty-{cls.__name__}")
        budget = MemoryBudget.from_records(10)
        result = cls(backend, budget, **kwargs).sort(collection)
        assert result.output.records == []

    def test_handles_single_record(self, sort_case, backend):
        cls, kwargs = sort_case
        collection = build_collection(backend, [7], name=f"one-{cls.__name__}")
        budget = MemoryBudget.from_records(10)
        result = cls(backend, budget, **kwargs).sort(collection)
        assert [r[0] for r in result.output.records] == [7]

    def test_input_unchanged_by_sorting(self, sort_case, backend, small_sort_input, sort_budget):
        cls, kwargs = sort_case
        before = list(small_sort_input.records)
        cls(backend, sort_budget, **kwargs).sort(small_sort_input)
        assert small_sort_input.records == before

    def test_works_on_every_backend(self, sort_case, any_backend):
        cls, kwargs = sort_case
        collection = build_collection(
            any_backend, [13, 2, 9, 4, 11, 0, 7] * 20, name="backend-input"
        )
        budget = MemoryBudget.from_records(12)
        result = cls(any_backend, budget, **kwargs).sort(collection)
        assert [r[0] for r in result.output.records] == sorted(collection.keys())


class TestResultMetadata:
    def test_io_snapshot_attached(self, backend, small_sort_input, sort_budget):
        result = ExternalMergeSort(backend, sort_budget).sort(small_sort_input)
        assert result.io.total_ns > 0
        assert result.simulated_seconds == pytest.approx(result.io.total_ns / 1e9)

    def test_exms_reports_runs_and_passes(self, backend, small_sort_input, sort_budget):
        result = ExternalMergeSort(backend, sort_budget).sort(small_sort_input)
        assert result.runs_generated >= 1
        assert result.merge_passes >= 1
        assert result.input_scans == 1

    def test_selection_sort_reports_scans(self, backend, small_sort_input, sort_budget):
        result = SelectionSort(backend, sort_budget).sort(small_sort_input)
        expected_passes = -(-len(small_sort_input) // sort_budget.record_capacity())
        assert result.input_scans == expected_passes
        assert result.runs_generated == 0

    def test_segment_sort_records_intensity(self, backend, small_sort_input, sort_budget):
        result = SegmentSort(backend, sort_budget, write_intensity=0.4).sort(
            small_sort_input
        )
        assert result.details["write_intensity"] == pytest.approx(0.4)
        assert result.details["boundary"] == int(round(len(small_sort_input) * 0.4))

    def test_lazy_sort_records_materializations(self, backend, small_sort_input):
        budget = MemoryBudget.fraction_of(small_sort_input, 0.03)
        result = LazySort(backend, budget).sort(small_sort_input)
        assert result.details["intermediate_materializations"] >= 1
        assert result.input_scans > 1

    def test_hybrid_sort_records_region_capacities(self, backend, small_sort_input, sort_budget):
        result = HybridSort(backend, sort_budget, write_intensity=0.25).sort(
            small_sort_input
        )
        details = result.details
        assert details["selection_capacity"] + details["replacement_capacity"] <= (
            sort_budget.record_capacity() + 1
        )


class TestConfiguration:
    def test_registry_contains_paper_abbreviations(self):
        assert set(SORT_REGISTRY) == {"ExMS", "SelS", "SegS", "HybS", "LaS"}

    def test_write_limited_flags(self):
        assert not ExternalMergeSort.write_limited
        assert SegmentSort.write_limited
        assert HybridSort.write_limited
        assert LazySort.write_limited

    def test_segment_intensity_validation(self, backend, sort_budget):
        with pytest.raises(ConfigurationError):
            SegmentSort(backend, sort_budget, write_intensity=1.5)

    def test_hybrid_intensity_validation(self, backend, sort_budget):
        with pytest.raises(ConfigurationError):
            HybridSort(backend, sort_budget, write_intensity=0.0)
        with pytest.raises(ConfigurationError):
            HybridSort(backend, sort_budget, write_intensity=1.0)

    def test_mismatched_schema_rejected(self, backend, sort_budget):
        from repro.storage.schema import Schema

        odd_schema = Schema(num_fields=2, field_bytes=4)
        collection = PersistentCollection(
            name="odd", backend=backend, schema=odd_schema
        )
        collection.append(odd_schema.make_record(1))
        with pytest.raises(ConfigurationError):
            ExternalMergeSort(backend, sort_budget).sort(collection)

    def test_pipelined_output_is_memory_resident(self, backend, small_sort_input, sort_budget):
        algorithm = ExternalMergeSort(
            backend, sort_budget, materialize_output=False
        )
        result = algorithm.sort(small_sort_input)
        assert result.output.status is CollectionStatus.MEMORY

    def test_estimated_cost_positive(self, backend, small_sort_input, sort_budget):
        for cls, kwargs in ALL_SORTS:
            algorithm = cls(backend, sort_budget, **kwargs)
            if isinstance(algorithm, SelectionSort):
                continue
            assert algorithm.estimated_cost_ns(small_sort_input.num_buffers) > 0

    def test_segment_resolves_optimal_intensity(self, backend, small_sort_input, sort_budget):
        algorithm = SegmentSort(backend, sort_budget)
        intensity = algorithm.resolve_intensity(small_sort_input.num_buffers)
        assert 0.0 < intensity < 1.0


class TestWorkspaceRegistration:
    """Sorts register their DRAM workspace against the bufferpool."""

    def test_workspace_reserved_during_run_and_released_after(
        self, backend, small_sort_input, sort_budget
    ):
        from repro.storage.bufferpool import Bufferpool

        pool = Bufferpool(sort_budget)
        algorithm = ExternalMergeSort(backend, sort_budget, bufferpool=pool)
        observed = []
        original = algorithm._execute

        def spying_execute(collection):
            observed.append(pool.reserved_bytes)
            return original(collection)

        algorithm._execute = spying_execute
        algorithm.sort(small_sort_input)
        assert observed == [sort_budget.nbytes]
        assert pool.reserved_bytes == 0

    def test_exhausted_shared_pool_rejects_the_sort(
        self, backend, small_sort_input, sort_budget
    ):
        from repro.exceptions import BufferpoolExhaustedError
        from repro.storage.bufferpool import Bufferpool

        pool = Bufferpool(sort_budget)
        pool.reserve(1, owner="other-operator")
        algorithm = ExternalMergeSort(backend, sort_budget, bufferpool=pool)
        with pytest.raises(BufferpoolExhaustedError):
            algorithm.sort(small_sort_input)

    def test_private_pool_by_default(self, backend, sort_budget):
        algorithm = ExternalMergeSort(backend, sort_budget)
        assert algorithm.bufferpool.budget is sort_budget
        assert algorithm.bufferpool.reserved_bytes == 0
