"""Property-based tests for the sorting algorithms (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem.device import PersistentMemoryDevice
from repro.pmem.backends import BlockedMemoryBackend
from repro.sorts import (
    ExternalMergeSort,
    HybridSort,
    LazySort,
    SegmentSort,
    SelectionSort,
)
from repro.storage.bufferpool import MemoryBudget
from repro.storage.collection import PersistentCollection
from repro.storage.schema import WISCONSIN_SCHEMA


def fresh_collection(keys):
    device = PersistentMemoryDevice()
    backend = BlockedMemoryBackend(device)
    collection = PersistentCollection(name="prop-input", backend=backend)
    collection.extend(WISCONSIN_SCHEMA.make_record(key) for key in keys)
    collection.seal()
    return backend, collection


key_lists = st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=300)
workspaces = st.integers(min_value=2, max_value=40)


@settings(max_examples=25, deadline=None)
@given(keys=key_lists, workspace=workspaces)
@pytest.mark.parametrize(
    "algorithm_cls,kwargs",
    [
        (ExternalMergeSort, {}),
        (SelectionSort, {}),
        (SegmentSort, {"write_intensity": 0.5}),
        (HybridSort, {"write_intensity": 0.5}),
        (LazySort, {}),
    ],
)
def test_sort_is_a_sorted_permutation(algorithm_cls, kwargs, keys, workspace):
    """Every algorithm returns exactly the sorted multiset of its input."""
    backend, collection = fresh_collection(keys)
    budget = MemoryBudget.from_records(workspace)
    result = algorithm_cls(backend, budget, **kwargs).sort(collection)
    assert [r[0] for r in result.output.records] == sorted(keys)
    assert sorted(result.output.records) == sorted(collection.records)


@settings(max_examples=25, deadline=None)
@given(keys=key_lists, workspace=workspaces)
def test_selection_sort_write_minimality_property(keys, workspace):
    """Selection sort writes each record exactly once regardless of memory."""
    backend, collection = fresh_collection(keys)
    budget = MemoryBudget.from_records(workspace)
    result = SelectionSort(backend, budget).sort(collection)
    expected = collection.nbytes / 64
    assert result.cacheline_writes == pytest.approx(expected, abs=1.0)


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=500), min_size=20, max_size=200),
    workspace=st.integers(min_value=4, max_value=30),
    intensity=st.floats(min_value=0.0, max_value=1.0),
)
def test_segment_sort_correct_for_any_intensity(keys, workspace, intensity):
    """The write-intensity knob never affects correctness."""
    backend, collection = fresh_collection(keys)
    budget = MemoryBudget.from_records(workspace)
    result = SegmentSort(backend, budget, write_intensity=intensity).sort(collection)
    assert [r[0] for r in result.output.records] == sorted(keys)


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200),
    workspace=st.integers(min_value=3, max_value=30),
)
def test_device_clock_consistency_during_sort(keys, workspace):
    """Simulated time equals reads*r + writes*w (no unaccounted overheads)."""
    backend, collection = fresh_collection(keys)
    budget = MemoryBudget.from_records(workspace)
    result = ExternalMergeSort(backend, budget).sort(collection)
    expected_ns = result.cacheline_reads * 10.0 + result.cacheline_writes * 150.0
    assert result.io.total_ns == pytest.approx(expected_ns)


@settings(max_examples=15, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=2000), min_size=50, max_size=250),
    fraction=st.floats(min_value=0.05, max_value=0.5),
)
def test_lazy_sort_never_writes_more_than_exms(keys, fraction):
    """The lazy algorithm's whole point: fewer writes than the baseline."""
    backend_a, collection_a = fresh_collection(keys)
    backend_b, collection_b = fresh_collection(keys)
    budget_a = MemoryBudget.fraction_of(collection_a, fraction)
    budget_b = MemoryBudget.fraction_of(collection_b, fraction)
    lazy = LazySort(backend_a, budget_a).sort(collection_a)
    exms = ExternalMergeSort(backend_b, budget_b).sort(collection_b)
    assert lazy.cacheline_writes <= exms.cacheline_writes + 1.0
