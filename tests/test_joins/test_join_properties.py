"""Property-based tests for the join algorithms (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins import (
    GraceJoin,
    HybridGraceNestedLoopsJoin,
    LazyHashJoin,
    NestedLoopsJoin,
    SegmentedGraceJoin,
    SimpleHashJoin,
)
from repro.pmem.backends import BlockedMemoryBackend
from repro.pmem.device import PersistentMemoryDevice
from repro.storage.bufferpool import MemoryBudget
from repro.storage.collection import PersistentCollection
from repro.storage.schema import WISCONSIN_SCHEMA


def fresh_inputs(left_keys, right_keys):
    device = PersistentMemoryDevice()
    backend = BlockedMemoryBackend(device)
    left = PersistentCollection(name="prop-L", backend=backend)
    left.extend(WISCONSIN_SCHEMA.make_record(key) for key in left_keys)
    left.seal()
    right = PersistentCollection(name="prop-R", backend=backend)
    right.extend(WISCONSIN_SCHEMA.make_record(key) for key in right_keys)
    right.seal()
    return backend, left, right


def reference(left, right):
    by_key = {}
    for record in left.records:
        by_key.setdefault(record[0], []).append(record)
    return sorted(
        l + r for r in right.records for l in by_key.get(r[0], [])
    )


key_lists = st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=80)
workspaces = st.integers(min_value=2, max_value=25)


@settings(max_examples=20, deadline=None)
@given(left_keys=key_lists, right_keys=key_lists, workspace=workspaces)
@pytest.mark.parametrize(
    "algorithm_cls,kwargs",
    [
        (NestedLoopsJoin, {}),
        (SimpleHashJoin, {}),
        (GraceJoin, {}),
        (HybridGraceNestedLoopsJoin, {"left_intensity": 0.5, "right_intensity": 0.5}),
        (SegmentedGraceJoin, {"write_intensity": 0.5}),
        (LazyHashJoin, {}),
    ],
)
def test_join_matches_reference_multiset(
    algorithm_cls, kwargs, left_keys, right_keys, workspace
):
    """Every algorithm returns exactly the reference join's match multiset."""
    backend, left, right = fresh_inputs(left_keys, right_keys)
    budget = MemoryBudget.from_records(workspace)
    result = algorithm_cls(backend, budget, **kwargs).join(left, right)
    assert sorted(result.output.records) == reference(left, right)


@settings(max_examples=20, deadline=None)
@given(
    left_keys=st.lists(st.integers(min_value=0, max_value=30), min_size=5, max_size=60),
    right_keys=st.lists(st.integers(min_value=0, max_value=30), min_size=5, max_size=60),
    workspace=workspaces,
    x=st.floats(min_value=0.0, max_value=1.0),
    y=st.floats(min_value=0.0, max_value=1.0),
)
def test_hybrid_join_correct_for_any_intensity_pair(
    left_keys, right_keys, workspace, x, y
):
    """The (x, y) knob never affects the hybrid join's result."""
    backend, left, right = fresh_inputs(left_keys, right_keys)
    budget = MemoryBudget.from_records(workspace)
    algorithm = HybridGraceNestedLoopsJoin(
        backend, budget, left_intensity=x, right_intensity=y
    )
    assert sorted(algorithm.join(left, right).output.records) == reference(left, right)


@settings(max_examples=20, deadline=None)
@given(
    left_keys=st.lists(st.integers(min_value=0, max_value=30), min_size=5, max_size=60),
    right_keys=st.lists(st.integers(min_value=0, max_value=30), min_size=5, max_size=60),
    workspace=workspaces,
    intensity=st.floats(min_value=0.0, max_value=1.0),
)
def test_segmented_join_correct_for_any_intensity(
    left_keys, right_keys, workspace, intensity
):
    backend, left, right = fresh_inputs(left_keys, right_keys)
    budget = MemoryBudget.from_records(workspace)
    algorithm = SegmentedGraceJoin(backend, budget, write_intensity=intensity)
    assert sorted(algorithm.join(left, right).output.records) == reference(left, right)


@settings(max_examples=15, deadline=None)
@given(
    left_keys=st.lists(st.integers(min_value=0, max_value=50), min_size=10, max_size=80),
    fanout=st.integers(min_value=1, max_value=5),
    workspace=workspaces,
)
def test_lazy_join_never_writes_more_than_simple_hash_join(
    left_keys, fanout, workspace
):
    """Laziness only removes writes relative to the eager algorithm."""
    right_keys = [key for key in left_keys for _ in range(fanout)]
    backend_a, left_a, right_a = fresh_inputs(left_keys, right_keys)
    backend_b, left_b, right_b = fresh_inputs(left_keys, right_keys)
    budget_a = MemoryBudget.from_records(workspace)
    budget_b = MemoryBudget.from_records(workspace)
    lazy = LazyHashJoin(backend_a, budget_a, materialize_output=False).join(
        left_a, right_a
    )
    eager = SimpleHashJoin(backend_b, budget_b, materialize_output=False).join(
        left_b, right_b
    )
    assert lazy.cacheline_writes <= eager.cacheline_writes + 1.0
