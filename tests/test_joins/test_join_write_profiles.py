"""Write/read profile tests for the joins: the paper's Figure 7 claims."""

import pytest

from repro.joins import (
    GraceJoin,
    HybridGraceNestedLoopsJoin,
    LazyHashJoin,
    NestedLoopsJoin,
    SegmentedGraceJoin,
    SimpleHashJoin,
)
from repro.storage.bufferpool import MemoryBudget


def run(cls, backend, budget, left, right, **kwargs):
    """Run with a pipelined output, matching the paper's cost accounting."""
    algorithm = cls(backend, budget, materialize_output=False, **kwargs)
    return algorithm.join(left, right)


class TestWriteProfiles:
    def test_nested_loops_writes_nothing(self, backend, small_join_inputs, join_budget):
        left, right = small_join_inputs
        result = run(NestedLoopsJoin, backend, join_budget, left, right)
        assert result.cacheline_writes == 0

    def test_grace_writes_both_inputs_once(self, backend, small_join_inputs, join_budget):
        left, right = small_join_inputs
        result = run(GraceJoin, backend, join_budget, left, right)
        expected = (left.nbytes + right.nbytes) / 64
        assert result.cacheline_writes == pytest.approx(expected, rel=0.05)

    def test_simple_hash_join_writes_most(self, backend, small_join_inputs, join_budget):
        left, right = small_join_inputs
        hash_join = run(SimpleHashJoin, backend, join_budget, left, right)
        grace = run(GraceJoin, backend, join_budget, left, right)
        assert hash_join.cacheline_writes > grace.cacheline_writes

    def test_write_limited_joins_write_less_than_grace(
        self, backend, small_join_inputs, join_budget
    ):
        left, right = small_join_inputs
        grace = run(GraceJoin, backend, join_budget, left, right)
        for cls, kwargs in [
            (HybridGraceNestedLoopsJoin, {"left_intensity": 0.5, "right_intensity": 0.5}),
            (SegmentedGraceJoin, {"write_intensity": 0.5}),
            (LazyHashJoin, {}),
        ]:
            result = run(cls, backend, join_budget, left, right, **kwargs)
            assert result.cacheline_writes < grace.cacheline_writes

    def test_lazy_join_writes_less_than_simple_hash_join(
        self, backend, small_join_inputs, join_budget
    ):
        """Figure 7(d): LaJ's write profile beats HJ by a wide margin."""
        left, right = small_join_inputs
        lazy = run(LazyHashJoin, backend, join_budget, left, right)
        hash_join = run(SimpleHashJoin, backend, join_budget, left, right)
        assert lazy.cacheline_writes < hash_join.cacheline_writes / 2
        assert lazy.cacheline_reads >= hash_join.cacheline_reads * 0.5

    def test_write_limited_joins_trade_writes_for_reads(
        self, backend, small_join_inputs, join_budget
    ):
        left, right = small_join_inputs
        grace = run(GraceJoin, backend, join_budget, left, right)
        segmented = run(
            SegmentedGraceJoin, backend, join_budget, left, right, write_intensity=0.2
        )
        assert segmented.cacheline_writes < grace.cacheline_writes
        assert segmented.cacheline_reads > grace.cacheline_reads


class TestIntensityKnobs:
    def test_segmented_intensity_increases_writes(
        self, backend, small_join_inputs, join_budget
    ):
        left, right = small_join_inputs
        low = run(
            SegmentedGraceJoin, backend, join_budget, left, right, write_intensity=0.2
        )
        high = run(
            SegmentedGraceJoin, backend, join_budget, left, right, write_intensity=0.8
        )
        assert high.cacheline_writes >= low.cacheline_writes
        assert high.cacheline_reads <= low.cacheline_reads

    def test_hybrid_right_intensity_drives_writes(
        self, backend, small_join_inputs, join_budget
    ):
        left, right = small_join_inputs
        low = run(
            HybridGraceNestedLoopsJoin,
            backend,
            join_budget,
            left,
            right,
            left_intensity=0.5,
            right_intensity=0.2,
        )
        high = run(
            HybridGraceNestedLoopsJoin,
            backend,
            join_budget,
            left,
            right,
            left_intensity=0.5,
            right_intensity=0.8,
        )
        assert high.cacheline_writes > low.cacheline_writes

    def test_hybrid_left_intensity_reduces_right_passes(
        self, backend, small_join_inputs, join_budget
    ):
        """Figure 10: the left intensity dictates the nested-loop passes."""
        left, right = small_join_inputs
        low = run(
            HybridGraceNestedLoopsJoin,
            backend,
            join_budget,
            left,
            right,
            left_intensity=0.2,
            right_intensity=0.5,
        )
        high = run(
            HybridGraceNestedLoopsJoin,
            backend,
            join_budget,
            left,
            right,
            left_intensity=0.8,
            right_intensity=0.5,
        )
        assert high.cacheline_reads < low.cacheline_reads

    def test_segmented_full_intensity_close_to_grace(
        self, backend, small_join_inputs, join_budget
    ):
        """At 100 % write intensity SegJ degenerates to Grace join plus nothing."""
        left, right = small_join_inputs
        grace = run(GraceJoin, backend, join_budget, left, right)
        segmented = run(
            SegmentedGraceJoin, backend, join_budget, left, right, write_intensity=1.0
        )
        assert segmented.cacheline_writes == pytest.approx(
            grace.cacheline_writes, rel=0.1
        )


class TestMemoryBehaviour:
    def test_write_limited_joins_catch_up_with_grace_as_memory_grows(
        self, backend, small_join_inputs
    ):
        """Figure 7(a): the write-limited joins overtake GJ at larger memory."""
        left, right = small_join_inputs
        large_budget = MemoryBudget.fraction_of(left, 0.25)
        grace = run(GraceJoin, backend, large_budget, left, right)
        lazy = run(LazyHashJoin, backend, large_budget, left, right)
        segmented = run(
            SegmentedGraceJoin, backend, large_budget, left, right, write_intensity=0.5
        )
        assert lazy.io.total_ns <= grace.io.total_ns * 1.1
        assert segmented.io.total_ns <= grace.io.total_ns * 1.1

    def test_grace_insensitive_to_memory(self, backend, small_join_inputs):
        left, right = small_join_inputs
        small = run(GraceJoin, backend, MemoryBudget.fraction_of(left, 0.05), left, right)
        large = run(GraceJoin, backend, MemoryBudget.fraction_of(left, 0.25), left, right)
        assert small.cacheline_writes == pytest.approx(large.cacheline_writes, rel=0.05)

    def test_nested_loops_improves_with_memory(self, backend, small_join_inputs):
        left, right = small_join_inputs
        small = run(
            NestedLoopsJoin, backend, MemoryBudget.fraction_of(left, 0.05), left, right
        )
        large = run(
            NestedLoopsJoin, backend, MemoryBudget.fraction_of(left, 0.25), left, right
        )
        assert large.cacheline_reads < small.cacheline_reads
