"""Tests for the Section 2.2 join cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CostModelError
from repro.joins import cost


LEFT = 10_000.0
RIGHT = 100_000.0
MEMORY = 1_000.0
LAMBDA = 15.0


class TestBaselines:
    def test_nested_loops_closed_form(self):
        expected = LEFT + (LEFT / MEMORY) * RIGHT
        assert cost.nested_loops_cost(LEFT, RIGHT, MEMORY, 1.0, LAMBDA) == pytest.approx(
            expected
        )

    def test_nested_loops_writes_only_output(self):
        without = cost.nested_loops_cost(LEFT, RIGHT, MEMORY, 1.0, LAMBDA)
        with_output = cost.nested_loops_cost(
            LEFT, RIGHT, MEMORY, 1.0, LAMBDA, output_buffers=100.0
        )
        assert with_output - without == pytest.approx(100.0 * LAMBDA)

    def test_grace_closed_form(self):
        expected = (2 + LAMBDA) * (LEFT + RIGHT)
        assert cost.grace_join_cost(LEFT, RIGHT, 1.0, LAMBDA) == pytest.approx(expected)

    def test_hash_join_dominates_grace(self):
        """HJ re-reads and re-writes shrinking inputs: always >= Grace."""
        assert cost.hash_join_cost(LEFT, RIGHT, MEMORY, 1.0, LAMBDA) >= (
            cost.grace_join_cost(LEFT, RIGHT, 1.0, LAMBDA)
        )

    def test_grace_applicability(self):
        assert cost.grace_applicable(LEFT, MEMORY)
        assert not cost.grace_applicable(LEFT, 50.0)

    def test_size_validation(self):
        with pytest.raises(CostModelError):
            cost.grace_join_cost(0, RIGHT)


class TestHybridJoin:
    def test_eq6_closed_form(self):
        x, y = 0.4, 0.7
        expected = (
            (2 + LAMBDA) * (x * LEFT + y * RIGHT)
            + (1 - x) * LEFT
            + LEFT * RIGHT / MEMORY * (1 - x * y)
        )
        assert cost.hybrid_join_cost(
            x, y, LEFT, RIGHT, MEMORY, 1.0, LAMBDA
        ) == pytest.approx(expected)

    def test_full_grace_corner_matches_grace_join(self):
        """At x = y = 1 the hybrid reduces to Grace join (Eq. 6 vs GJ cost)."""
        hybrid = cost.hybrid_join_cost(1.0, 1.0, LEFT, RIGHT, MEMORY, 1.0, LAMBDA)
        grace = cost.grace_join_cost(LEFT, RIGHT, 1.0, LAMBDA)
        assert hybrid == pytest.approx(grace)

    def test_full_nested_loops_corner(self):
        """At x = y = 0 the hybrid reduces to block nested loops."""
        hybrid = cost.hybrid_join_cost(0.0, 0.0, LEFT, RIGHT, MEMORY, 1.0, LAMBDA)
        nlj = cost.nested_loops_cost(LEFT, RIGHT, MEMORY, 1.0, LAMBDA)
        assert hybrid == pytest.approx(nlj)

    def test_saddle_point_eq7_eq8(self):
        x_h, y_h = cost.hybrid_join_saddle_point(LEFT, RIGHT, MEMORY, LAMBDA)
        assert x_h == pytest.approx(MEMORY * (LAMBDA + 2) / LEFT)
        assert y_h == pytest.approx(MEMORY * (LAMBDA + 1) / RIGHT)

    def test_x_y_validation(self):
        with pytest.raises(CostModelError):
            cost.hybrid_join_cost(1.5, 0.5, LEFT, RIGHT, MEMORY)

    def test_heuristics_similar_inputs_low_lambda_prefer_grace(self):
        x, y = cost.hybrid_join_heuristic_intensities(LEFT, LEFT, MEMORY, 2.0)
        assert x >= 0.8 and y >= 0.8

    def test_heuristics_large_ratio_shifts_to_nested_loops(self):
        x, y = cost.hybrid_join_heuristic_intensities(LEFT, 100 * LEFT, MEMORY, 8.0)
        assert y < 0.5
        assert x + y <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        x=st.floats(min_value=0.0, max_value=1.0),
        y=st.floats(min_value=0.0, max_value=1.0),
        lam=st.floats(min_value=1.5, max_value=20.0),
    )
    def test_property_cost_positive_and_finite(self, x, y, lam):
        value = cost.hybrid_join_cost(x, y, LEFT, RIGHT, MEMORY, 1.0, lam)
        assert value > 0
        assert value < float("inf")


class TestSegmentedGrace:
    def test_eq9_closed_form(self):
        k = 10.0
        x = 4.0
        total = LEFT + RIGHT
        expected = total + x * (1 + LAMBDA) * total / k + (k - x) * total
        assert cost.segmented_grace_cost(
            x, LEFT, RIGHT, k, 1.0, LAMBDA
        ) == pytest.approx(expected)

    def test_all_partitions_materialized_close_to_grace(self):
        """x = k: one extra scan of both inputs compared to Grace join."""
        k = 10.0
        segmented = cost.segmented_grace_cost(k, LEFT, RIGHT, k, 1.0, LAMBDA)
        grace = cost.grace_join_cost(LEFT, RIGHT, 1.0, LAMBDA)
        assert segmented == pytest.approx(grace - (LEFT + RIGHT) * 1.0 + (LEFT + RIGHT))

    def test_eq10_bound_behaviour(self):
        """For small k relative to lambda the bound allows materialization."""
        bound = cost.segmented_grace_beats_grace_bound(3.0, 15.0)
        assert 0 < bound <= 3.0

    def test_eq10_bound_is_clipped_to_partition_count(self):
        # The closed form evaluates below k here; it is returned as-is.
        bound = cost.segmented_grace_beats_grace_bound(10.0, 2.0)
        expected = (2.0 + 1.0 - 10.0) * 10.0 / (2.0 + 1.0 - 100.0)
        assert bound == pytest.approx(expected)
        # And it is never reported above the number of partitions.
        assert cost.segmented_grace_beats_grace_bound(2.0, 50.0) <= 2.0

    def test_materialized_partition_validation(self):
        with pytest.raises(CostModelError):
            cost.segmented_grace_cost(11.0, LEFT, RIGHT, 10.0)

    def test_rescans_cheaper_than_materializing_when_k_below_lambda(self):
        """Eq. 9: with k < lambda + 1 a full rescan (r(|T|+|V|)) costs less
        than writing and re-reading a 1/k share ((1+lambda)(|T|+|V|)/k), so
        the cost grows with the number of materialized partitions."""
        k = 8.0
        low = cost.segmented_grace_cost(1.0, LEFT, RIGHT, k, 1.0, LAMBDA)
        high = cost.segmented_grace_cost(7.0, LEFT, RIGHT, k, 1.0, LAMBDA)
        assert high > low

    def test_materializing_wins_when_k_exceeds_lambda_plus_one(self):
        k = 30.0
        low = cost.segmented_grace_cost(2.0, LEFT, RIGHT, k, 1.0, LAMBDA)
        high = cost.segmented_grace_cost(28.0, LEFT, RIGHT, k, 1.0, LAMBDA)
        assert high < low


class TestLazyHashJoin:
    def test_materialization_iteration_corrected_form(self):
        """n* = floor(k lambda / (lambda + 1)), the corrected Eq. 11."""
        assert cost.lazy_hash_materialization_iteration(16, 15.0) == 15
        assert cost.lazy_hash_materialization_iteration(4, 3.0) == 3

    def test_materialization_iteration_monotone_in_lambda(self):
        low = cost.lazy_hash_materialization_iteration(10, 2.0)
        high = cost.lazy_hash_materialization_iteration(10, 20.0)
        assert high >= low

    def test_lazy_cost_cheaper_than_simple_hash_join(self):
        lazy = cost.lazy_hash_join_cost(LEFT, RIGHT, MEMORY, 1.0, LAMBDA)
        simple = cost.hash_join_cost(LEFT, RIGHT, MEMORY, 1.0, LAMBDA)
        assert lazy < simple

    def test_validation(self):
        with pytest.raises(CostModelError):
            cost.lazy_hash_materialization_iteration(0, 15.0)
        with pytest.raises(CostModelError):
            cost.lazy_hash_join_cost(LEFT, RIGHT, 0.5)
