"""Correctness and configuration tests for the six join algorithms."""

import pytest

from repro.exceptions import ConfigurationError
from repro.joins import (
    JOIN_REGISTRY,
    GraceJoin,
    HybridGraceNestedLoopsJoin,
    LazyHashJoin,
    NestedLoopsJoin,
    SegmentedGraceJoin,
    SimpleHashJoin,
)
from repro.joins.common import build_hash_table, joined_schema, partition_of, probe
from repro.storage.bufferpool import MemoryBudget
from repro.storage.schema import Schema, WISCONSIN_SCHEMA

from tests.conftest import build_collection

ALL_JOINS = [
    (NestedLoopsJoin, {}),
    (SimpleHashJoin, {}),
    (GraceJoin, {}),
    (HybridGraceNestedLoopsJoin, {"left_intensity": 0.5, "right_intensity": 0.5}),
    (HybridGraceNestedLoopsJoin, {"left_intensity": 0.0, "right_intensity": 0.0}),
    (HybridGraceNestedLoopsJoin, {"left_intensity": 1.0, "right_intensity": 1.0}),
    (HybridGraceNestedLoopsJoin, {"left_intensity": 0.2, "right_intensity": 0.8}),
    (HybridGraceNestedLoopsJoin, {}),  # heuristic intensities
    (SegmentedGraceJoin, {"write_intensity": 0.0}),
    (SegmentedGraceJoin, {"write_intensity": 0.5}),
    (SegmentedGraceJoin, {"write_intensity": 1.0}),
    (LazyHashJoin, {}),
]


def join_ids(param):
    cls, kwargs = param
    suffix = ",".join(f"{k}={v}" for k, v in kwargs.items())
    return f"{cls.__name__}({suffix})"


@pytest.fixture(params=ALL_JOINS, ids=[join_ids(p) for p in ALL_JOINS])
def join_case(request):
    return request.param


def reference_join(left, right):
    """Sorted multiset of concatenated matches, computed in plain Python."""
    by_key = {}
    for record in left.records:
        by_key.setdefault(record[0], []).append(record)
    matches = []
    for right_record in right.records:
        for left_record in by_key.get(right_record[0], []):
            matches.append(left_record + right_record)
    return sorted(matches)


class TestHelpers:
    def test_partition_of_is_stable_and_in_range(self):
        for key in range(1000):
            assert 0 <= partition_of(key, 7) < 7
            assert partition_of(key, 7) == partition_of(key, 7)

    def test_partition_of_validation(self):
        with pytest.raises(ConfigurationError):
            partition_of(5, 0)

    def test_build_and_probe(self):
        records = [WISCONSIN_SCHEMA.make_record(k) for k in [1, 2, 2, 3]]
        table = build_hash_table(records, WISCONSIN_SCHEMA.key)
        assert len(probe(table, WISCONSIN_SCHEMA.make_record(2), WISCONSIN_SCHEMA.key)) == 2
        assert probe(table, WISCONSIN_SCHEMA.make_record(9), WISCONSIN_SCHEMA.key) == []

    def test_joined_schema(self):
        combined = joined_schema(WISCONSIN_SCHEMA, WISCONSIN_SCHEMA)
        assert combined.record_bytes == 160

    def test_joined_schema_rejects_mixed_widths(self):
        with pytest.raises(ConfigurationError):
            joined_schema(WISCONSIN_SCHEMA, Schema(num_fields=4, field_bytes=4))


class TestCorrectness:
    def test_matches_reference_join(self, join_case, backend, small_join_inputs, join_budget):
        cls, kwargs = join_case
        left, right = small_join_inputs
        result = cls(backend, join_budget, **kwargs).join(left, right)
        assert sorted(result.output.records) == reference_join(left, right)

    def test_no_matches(self, join_case, backend):
        cls, kwargs = join_case
        left = build_collection(backend, range(0, 50), name=f"L-disjoint-{join_ids(join_case)}")
        right = build_collection(backend, range(100, 200), name=f"R-disjoint-{join_ids(join_case)}")
        budget = MemoryBudget.from_records(8)
        result = cls(backend, budget, **kwargs).join(left, right)
        assert result.output.records == []

    def test_empty_left_input(self, join_case, backend):
        cls, kwargs = join_case
        left = build_collection(backend, [], name=f"L-empty-{join_ids(join_case)}")
        right = build_collection(backend, range(20), name=f"R-nonempty-{join_ids(join_case)}")
        budget = MemoryBudget.from_records(8)
        result = cls(backend, budget, **kwargs).join(left, right)
        assert result.output.records == []

    def test_empty_right_input(self, join_case, backend):
        cls, kwargs = join_case
        left = build_collection(backend, range(20), name=f"L-nonempty-{join_ids(join_case)}")
        right = build_collection(backend, [], name=f"R-empty-{join_ids(join_case)}")
        budget = MemoryBudget.from_records(8)
        result = cls(backend, budget, **kwargs).join(left, right)
        assert result.output.records == []

    def test_skewed_keys(self, join_case, backend):
        """A single hot key matching many right records."""
        cls, kwargs = join_case
        left = build_collection(backend, [7] * 5 + list(range(10)), name=f"L-skew-{join_ids(join_case)}")
        right = build_collection(backend, [7] * 50 + list(range(5)), name=f"R-skew-{join_ids(join_case)}")
        budget = MemoryBudget.from_records(6)
        result = cls(backend, budget, **kwargs).join(left, right)
        assert sorted(result.output.records) == reference_join(left, right)

    def test_inputs_unchanged(self, join_case, backend, small_join_inputs, join_budget):
        cls, kwargs = join_case
        left, right = small_join_inputs
        left_before, right_before = list(left.records), list(right.records)
        cls(backend, join_budget, **kwargs).join(left, right)
        assert left.records == left_before
        assert right.records == right_before

    def test_works_on_every_backend(self, join_case, any_backend):
        cls, kwargs = join_case
        left = build_collection(any_backend, range(40), name="L")
        right = build_collection(any_backend, [k % 40 for k in range(400)], name="R")
        budget = MemoryBudget.from_records(8)
        result = cls(any_backend, budget, **kwargs).join(left, right)
        assert len(result.output.records) == 400


class TestResultMetadata:
    def test_io_snapshot_attached(self, backend, small_join_inputs, join_budget):
        left, right = small_join_inputs
        result = GraceJoin(backend, join_budget).join(left, right)
        assert result.io.total_ns > 0
        assert result.matches == len(result.output.records)

    def test_grace_reports_partitions(self, backend, small_join_inputs, join_budget):
        left, right = small_join_inputs
        result = GraceJoin(backend, join_budget).join(left, right)
        assert result.partitions >= 2
        assert result.iterations == result.partitions

    def test_hybrid_records_intensities(self, backend, small_join_inputs, join_budget):
        left, right = small_join_inputs
        result = HybridGraceNestedLoopsJoin(
            backend, join_budget, left_intensity=0.3, right_intensity=0.6
        ).join(left, right)
        assert result.details["left_intensity"] == pytest.approx(0.3)
        assert result.details["right_intensity"] == pytest.approx(0.6)

    def test_segmented_records_materialized_partitions(
        self, backend, small_join_inputs, join_budget
    ):
        left, right = small_join_inputs
        result = SegmentedGraceJoin(backend, join_budget, write_intensity=0.5).join(
            left, right
        )
        assert 0 < result.details["materialized_partitions"] <= result.partitions
        assert result.details["rescans"] == (
            result.partitions - result.details["materialized_partitions"]
        )

    def test_lazy_join_reports_materializations(self, backend, small_join_inputs):
        left, right = small_join_inputs
        budget = MemoryBudget.fraction_of(left, 0.05)
        result = LazyHashJoin(backend, budget).join(left, right)
        assert result.details["intermediate_materializations"] >= 0
        assert result.iterations == result.partitions


class TestConfiguration:
    def test_registry_contains_paper_abbreviations(self):
        assert set(JOIN_REGISTRY) == {"NLJ", "HJ", "GJ", "HybJ", "SegJ", "LaJ"}

    def test_write_limited_flags(self):
        assert not GraceJoin.write_limited
        assert not SimpleHashJoin.write_limited
        assert not NestedLoopsJoin.write_limited
        assert HybridGraceNestedLoopsJoin.write_limited
        assert SegmentedGraceJoin.write_limited
        assert LazyHashJoin.write_limited

    def test_hybrid_intensity_validation(self, backend, join_budget):
        with pytest.raises(ConfigurationError):
            HybridGraceNestedLoopsJoin(backend, join_budget, left_intensity=1.5)

    def test_segmented_intensity_validation(self, backend, join_budget):
        with pytest.raises(ConfigurationError):
            SegmentedGraceJoin(backend, join_budget, write_intensity=-0.1)

    def test_fudge_factor_validation(self, backend, join_budget):
        with pytest.raises(ConfigurationError):
            GraceJoin(backend, join_budget, partition_fudge_factor=0.5)

    def test_estimated_costs_positive(self, backend, small_join_inputs, join_budget):
        left, right = small_join_inputs
        for cls, kwargs in ALL_JOINS:
            algorithm = cls(backend, join_budget, **kwargs)
            estimate = algorithm.estimated_cost_ns(left.num_buffers, right.num_buffers)
            assert estimate > 0

    def test_num_partitions_accounts_for_fudge_factor(self, backend, small_join_inputs):
        left, _ = small_join_inputs
        budget = MemoryBudget.from_records(50)
        plain = GraceJoin(backend, budget, partition_fudge_factor=1.0)
        padded = GraceJoin(backend, budget, partition_fudge_factor=1.5)
        assert padded.num_partitions_for(left) >= plain.num_partitions_for(left)


class TestWorkspaceRegistration:
    """Joins register their DRAM workspace against the bufferpool."""

    def test_workspace_reserved_during_run_and_released_after(
        self, backend, small_join_inputs, join_budget
    ):
        from repro.storage.bufferpool import Bufferpool

        left, right = small_join_inputs
        pool = Bufferpool(join_budget)
        algorithm = GraceJoin(backend, join_budget, bufferpool=pool)
        observed = []
        original = algorithm._execute

        def spying_execute(build, probe):
            observed.append(pool.reserved_bytes)
            return original(build, probe)

        algorithm._execute = spying_execute
        algorithm.join(left, right)
        assert observed == [join_budget.nbytes]
        assert pool.reserved_bytes == 0

    def test_exhausted_shared_pool_rejects_the_join(
        self, backend, small_join_inputs, join_budget
    ):
        from repro.exceptions import BufferpoolExhaustedError
        from repro.storage.bufferpool import Bufferpool

        left, right = small_join_inputs
        pool = Bufferpool(join_budget)
        pool.reserve(1, owner="other-operator")
        algorithm = NestedLoopsJoin(backend, join_budget, bufferpool=pool)
        with pytest.raises(BufferpoolExhaustedError):
            algorithm.join(left, right)
