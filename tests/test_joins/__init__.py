"""Test package marker: keeps same-named test modules importable under distinct package paths."""
